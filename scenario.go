// Scenario sweeps: price a whole portfolio under a grid of market scenarios
// — spot, volatility and rate bumps, plus named stress states — with
// cross-scenario amortization. This is the risk-desk workload one level above
// PriceBatch: a book is repriced under every point of a bump grid to build
// P&L ladders, and the scenarios share almost all of their structure. The
// sweep engine exploits that three ways:
//
//   - the (contract, scenario) product is folded into canonical repricing
//     tasks, so duplicate contracts, repeated scenarios, and the zero-bump
//     grid point all price exactly once, and every task's result fans back
//     out to all the result cells that need it;
//   - scenario repricings run at a reduced lattice resolution with a
//     control-variate correction against the full-resolution base price
//     (price = base_full + scenario_low - base_low): the O(1/T) lattice bias
//     largely cancels in the scenario-minus-base difference, so P&L keeps
//     full-resolution accuracy at a fraction of the work;
//   - below the engine, the kernel-spectrum cache's cross-resolution symbol
//     sharing (internal/linstencil) lets the full-resolution base solves and
//     the reduced-resolution scenario solves derive their stencil symbols
//     from one another instead of evaluating them twice.
package amop

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Scenario is one market-state perturbation applied to every contract of a
// sweep. The zero value is the base scenario (no perturbation).
type Scenario struct {
	// Name labels the scenario in results and CLI output; empty names get a
	// derived label (see Label).
	Name string `json:"name,omitempty"`
	// Spot is the relative spot bump: S becomes S * (1 + Spot).
	Spot float64 `json:"spot,omitempty"`
	// Vol is the absolute volatility bump: V becomes V + Vol.
	Vol float64 `json:"vol,omitempty"`
	// Rate is the absolute rate bump: R becomes R + Rate.
	Rate float64 `json:"rate,omitempty"`
}

// Apply returns the option under the scenario's market state.
func (sc Scenario) Apply(o Option) Option {
	o.S *= 1 + sc.Spot
	o.V += sc.Vol
	o.R += sc.Rate
	return o
}

// IsBase reports whether the scenario leaves the market unchanged.
func (sc Scenario) IsBase() bool { return sc.Spot == 0 && sc.Vol == 0 && sc.Rate == 0 }

// Label returns the scenario's display name: Name when set, "base" for the
// zero scenario, and a compact bump description otherwise.
func (sc Scenario) Label() string {
	if sc.Name != "" {
		return sc.Name
	}
	if sc.IsBase() {
		return "base"
	}
	var parts []string
	if sc.Spot != 0 {
		parts = append(parts, fmt.Sprintf("spot%+g%%", 100*sc.Spot))
	}
	if sc.Vol != 0 {
		parts = append(parts, fmt.Sprintf("vol%+g", sc.Vol))
	}
	if sc.Rate != 0 {
		parts = append(parts, fmt.Sprintf("rate%+gbp", 10000*sc.Rate))
	}
	return strings.Join(parts, "/")
}

// ScenarioGrid describes a bump grid plus named stress scenarios. An empty
// axis contributes the single unbumped point, so a grid with only SpotBumps
// set sweeps spot alone.
type ScenarioGrid struct {
	SpotBumps []float64  `json:"spot_bumps,omitempty"` // relative, e.g. -0.05 for spot down 5%
	VolBumps  []float64  `json:"vol_bumps,omitempty"`  // absolute vol points
	RateBumps []float64  `json:"rate_bumps,omitempty"` // absolute rate points
	Stress    []Scenario `json:"stress,omitempty"`     // appended after the grid
}

// IsEmpty reports whether the grid has no bump axes and no stress scenarios
// (its expansion would be the single base scenario).
func (g ScenarioGrid) IsEmpty() bool {
	return len(g.SpotBumps) == 0 && len(g.VolBumps) == 0 && len(g.RateBumps) == 0 && len(g.Stress) == 0
}

// Scenarios expands the grid into the cartesian product of its axes (rate
// fastest, spot slowest), followed by the stress scenarios.
func (g ScenarioGrid) Scenarios() []Scenario {
	spot, vol, rate := gridAxis(g.SpotBumps), gridAxis(g.VolBumps), gridAxis(g.RateBumps)
	out := make([]Scenario, 0, len(spot)*len(vol)*len(rate)+len(g.Stress))
	for _, s := range spot {
		for _, v := range vol {
			for _, r := range rate {
				out = append(out, Scenario{Spot: s, Vol: v, Rate: r})
			}
		}
	}
	return append(out, g.Stress...)
}

func gridAxis(v []float64) []float64 {
	if len(v) == 0 {
		return []float64{0}
	}
	return v
}

// SweepOptions controls ScenarioSweep scheduling and resolution.
type SweepOptions struct {
	// Workers bounds the pool as in BatchOptions.
	Workers int
	// ScenarioSteps is the lattice resolution for scenario repricings. Zero
	// selects half of each request's Config.Steps: the sweep reports the
	// control-variate price base_full + (scenario_low - base_low), whose
	// scenario-minus-base difference cancels most of the O(1/T) lattice bias,
	// so scenario P&L keeps full-resolution accuracy at roughly half the
	// per-scenario work. A negative value prices every scenario at the
	// request's own full resolution (the correction then degenerates to the
	// plain scenario price).
	ScenarioSteps int
	// Greeks adds per-scenario bump-and-reprice Greeks around each scenario
	// point. The repricings route through the sweep's shared memo, so
	// neighboring bumps are priced once.
	Greeks bool
	// GreeksSteps is the resolution for the Greeks bumps; zero selects the
	// scenario resolution.
	GreeksSteps int
	// OnResult, when non-nil, is invoked once per (contract, scenario) cell
	// as it completes (serialized, completion order, concurrent with the
	// rest of the sweep) — e.g. to stream the P&L ladder as it fills in.
	OnResult func(contract, scenario int, r ScenarioResult)
	// DisableMemo turns off the engine's repricing memo for A/B measurement,
	// as in BatchOptions; leave it off in production.
	DisableMemo bool
}

// ScenarioResult is one cell of the sweep: a contract priced under a
// scenario. Err is per cell — one bad scenario (a bump driving the vol
// negative, a degenerate lattice) never poisons the rest of the grid.
type ScenarioResult struct {
	// Price is the scenario price (control-variate corrected when scenario
	// repricings run below the base resolution; see SweepOptions).
	Price float64
	// PnL is Price minus the contract's full-resolution base price.
	PnL float64
	// Greeks holds the scenario-point sensitivities when SweepOptions.Greeks
	// is set; zero otherwise.
	Greeks Greeks
	Err    error
}

// SweepStats summarizes the sweep plan.
type SweepStats struct {
	// Cells is the size of the (contract, scenario) product.
	Cells int
	// UniqueRepricings is the number of canonical repricing tasks the plan
	// actually priced — base anchors plus deduplicated scenario points.
	// Cells + Contracts repricings would be the naive cost; the gap is the
	// plan-level dedup (Greeks bumps are memoized separately and not
	// counted).
	UniqueRepricings int
}

// Sweep is the result of a ScenarioSweep.
type Sweep struct {
	// Scenarios echoes the swept scenarios, in input order.
	Scenarios []Scenario
	// Base holds each contract's full-resolution base price (the request
	// exactly as submitted), with per-contract errors.
	Base []Result
	// Results holds one cell per (contract, scenario) pair in row-major
	// contract-major order; use At for indexed access.
	Results []ScenarioResult
	Stats   SweepStats
}

// At returns the cell for contract c under scenario s.
func (sw *Sweep) At(c, s int) ScenarioResult {
	return sw.Results[c*len(sw.Scenarios)+s]
}

// sweepTask is one canonical repricing of the sweep plan: a deduplicated
// (option, model, config) point, together with the result slots its price
// fans out to.
type sweepTask struct {
	o     Option
	m     Model
	cfg   Config
	price float64
	err   error
	cells []int32 // dependent result cells; repeats mean repeated decrements
	bases []int32 // contracts whose full-resolution base price this is
}

// ScenarioSweep prices every request under every scenario and returns the
// full grid, with per-cell errors and per-contract base prices. The
// (contract, scenario) product is deduplicated into canonical repricing
// tasks, the tasks are sharded over one bounded worker pool (drawing on the
// same global spawn budget as the pricers' inner parallel loops), and each
// cell is assembled and streamed the moment its last dependency completes.
//
// Scenario repricings default to half the base resolution with a
// control-variate correction against the full-resolution base; see
// SweepOptions.ScenarioSteps.
func ScenarioSweep(reqs []Request, scenarios []Scenario, opts SweepOptions) *Sweep {
	return ScenarioSweepCtx(context.Background(), reqs, scenarios, opts)
}

// ScenarioSweepCtx is ScenarioSweep with a context. Sweeps are bulk-class
// work (see BatchOptions.Interactive): canceling the context fails every
// task not yet started immediately — cells depending on them carry the
// context's error — and stops in-flight solves within one trapezoid of
// work, with the spawn budget fully restored on return.
func ScenarioSweepCtx(ctx context.Context, reqs []Request, scenarios []Scenario, opts SweepOptions) *Sweep {
	sw := &Sweep{
		Scenarios: append([]Scenario(nil), scenarios...),
		Base:      make([]Result, len(reqs)),
		Results:   make([]ScenarioResult, len(reqs)*len(scenarios)),
	}
	sw.Stats.Cells = len(sw.Results)
	if len(reqs) == 0 {
		return sw
	}
	eng := newEngine()
	eng.memoOff = opts.DisableMemo
	eng.cancel = ctxCancel(ctx)

	// Plan: fold the (contract, scenario) product into canonical tasks. A
	// task key is the fully resolved (option, model, config) triple, so
	// duplicate contracts, repeated scenarios, the zero-bump grid point, and
	// full-resolution sweeps whose low anchor coincides with the base all
	// collapse to single repricings.
	var tasks []*sweepTask
	index := make(map[priceKey]*sweepTask)
	taskFor := func(o Option, m Model, cfg Config) *sweepTask {
		m = resolveModel(o, m, cfg)
		k := priceKey{o: o, m: m, cfg: cfg}
		t := index[k]
		if t == nil {
			t = &sweepTask{o: o, m: m, cfg: cfg}
			index[k] = t
			tasks = append(tasks, t)
		}
		return t
	}

	type cellPlan struct{ hi, lo, scen *sweepTask }
	cells := make([]cellPlan, len(sw.Results))
	pending := make([]atomic.Int32, len(sw.Results))
	maxSteps := 0
	for c := range reqs {
		req := reqs[c]
		hi := taskFor(req.Option, req.Model, req.Config)
		hi.bases = append(hi.bases, int32(c))
		maxSteps = max(maxSteps, req.Config.Steps)
		if len(scenarios) == 0 {
			continue
		}
		scenSteps := opts.ScenarioSteps
		switch {
		case scenSteps == 0:
			scenSteps = max(req.Config.Steps/2, 1)
		case scenSteps < 0:
			scenSteps = req.Config.Steps
		}
		maxSteps = max(maxSteps, scenSteps)
		loCfg := req.Config
		loCfg.Steps = scenSteps
		lo := taskFor(req.Option, req.Model, loCfg)
		for s := range scenarios {
			idx := c*len(scenarios) + s
			scen := taskFor(scenarios[s].Apply(req.Option), req.Model, loCfg)
			cells[idx] = cellPlan{hi: hi, lo: lo, scen: scen}
			// Three dependency edges per cell; coinciding tasks (lo == hi at
			// full resolution, scen == lo on the zero bump) simply hold the
			// cell index more than once and decrement once per edge.
			hi.cells = append(hi.cells, int32(idx))
			lo.cells = append(lo.cells, int32(idx))
			scen.cells = append(scen.cells, int32(idx))
			pending[idx].Store(3)
		}
	}
	sw.Stats.UniqueRepricings = len(tasks)
	if opts.Greeks {
		maxSteps = max(maxSteps, opts.GreeksSteps)
	}
	eng.prewarm(maxSteps)

	var deliverMu sync.Mutex
	finalize := func(idx int) {
		cp := cells[idx]
		c, s := idx/len(scenarios), idx%len(scenarios)
		var r ScenarioResult
		switch {
		case cp.hi.err != nil:
			r.Err = cp.hi.err
		case cp.lo.err != nil:
			r.Err = cp.lo.err
		case cp.scen.err != nil:
			r.Err = cp.scen.err
		default:
			r.PnL = cp.scen.price - cp.lo.price
			r.Price = cp.hi.price + r.PnL
			if opts.Greeks {
				gcfg := cp.scen.cfg
				if opts.GreeksSteps > 0 {
					gcfg.Steps = opts.GreeksSteps
				}
				g, err := greeks(cp.scen.o, func(oo Option) (float64, error) {
					res := eng.run(Request{Option: oo, Model: reqs[c].Model, Config: gcfg})
					return res.Price, res.Err
				})
				if err != nil {
					r.Err = err
				} else {
					r.Greeks = g
				}
			}
		}
		sw.Results[idx] = r
		if opts.OnResult != nil {
			deliverMu.Lock()
			defer deliverMu.Unlock()
			opts.OnResult(c, s, r)
		}
	}

	runPool(len(tasks), opts.Workers, true, nil, func(i int) {
		t := tasks[i]
		res := eng.run(Request{Option: t.o, Model: t.m, Config: t.cfg})
		t.price, t.err = res.Price, res.Err
		for _, c := range t.bases {
			sw.Base[c] = Result{Price: t.price, Err: t.err}
		}
		for _, idx := range t.cells {
			if pending[idx].Add(-1) == 0 {
				finalize(int(idx))
			}
		}
	})
	return sw
}
