package amop

import (
	"sort"

	"github.com/nlstencil/amop/internal/serve"
)

// SymbolHealth is one symbol's serving health, as reported by Server.Health:
// the breaker state plus the counts of contracts currently quarantined or
// whose latest solve attempt failed (both serve degraded off pinned
// last-good prices, or error when no good price was ever solved).
type SymbolHealth struct {
	Symbol string `json:"symbol"`
	// Breaker is the circuit-breaker state: "closed", "open" or "half-open".
	Breaker string `json:"breaker"`
	// Contracts is the number of contracts registered under the symbol.
	Contracts int `json:"contracts"`
	// Quarantined counts contracts pulled from repricing flights after a
	// solver panic.
	Quarantined int `json:"quarantined,omitempty"`
	// Failing counts contracts whose most recent solve attempt failed
	// (health-gate rejection, solver error, or panic); quarantined contracts
	// are included.
	Failing int `json:"failing,omitempty"`
}

// ServerHealth is the readiness view of a live pricing server — the
// per-symbol health signal the sharding router consumes to steer quote
// traffic away from degraded shards. It is served as JSON at /readyz by
// amop-serve.
type ServerHealth struct {
	// Ready is the headline readiness: true when no breaker is open, no
	// contract is quarantined, and no contract's latest solve failed. A
	// not-ready server still answers quotes (degraded serving is the whole
	// point of the fault-isolation layer); Ready=false tells a router this
	// replica should shed load to healthier peers when it can.
	Ready bool `json:"ready"`
	// OpenBreakers lists symbols whose circuit breaker is open or half-open.
	OpenBreakers []string `json:"open_breakers,omitempty"`
	// DegradedSymbols lists symbols with at least one quarantined or failing
	// contract.
	DegradedSymbols []string `json:"degraded_symbols,omitempty"`
	// QuarantinedContracts is the total count of quarantined contracts.
	QuarantinedContracts int `json:"quarantined_contracts,omitempty"`
	// Symbols is the full per-symbol breakdown, sorted by symbol.
	Symbols []SymbolHealth `json:"symbols"`
}

// Health reports the server's current readiness: breaker states, quarantined
// contracts and failing solves, aggregated per symbol. It takes the server
// lock once and performs no solves, so it is safe to poll at router
// frequency.
func (s *Server) Health() ServerHealth {
	s.mu.Lock()
	perSym := make(map[string]*SymbolHealth, len(s.markets))
	for i := range s.book {
		c := &s.book[i]
		sym := c.entry.Symbol
		h := perSym[sym]
		if h == nil {
			h = &SymbolHealth{Symbol: sym}
			perSym[sym] = h
		}
		h.Contracts++
		if c.quar != nil {
			h.Quarantined++
		}
		if c.err != nil || c.quar != nil {
			h.Failing++
		}
	}
	breakers := make(map[string]serve.BreakerState, len(s.breakers))
	for sym, b := range s.breakers {
		breakers[sym] = b.State()
	}
	s.mu.Unlock()

	out := ServerHealth{Ready: true}
	for sym, h := range perSym {
		h.Breaker = breakers[sym].String()
		if breakers[sym] != serve.BreakerClosed {
			out.OpenBreakers = append(out.OpenBreakers, sym)
			out.Ready = false
		}
		if h.Quarantined > 0 || h.Failing > 0 {
			out.DegradedSymbols = append(out.DegradedSymbols, sym)
			out.Ready = false
		}
		out.QuarantinedContracts += h.Quarantined
		out.Symbols = append(out.Symbols, *h)
	}
	sort.Strings(out.OpenBreakers)
	sort.Strings(out.DegradedSymbols)
	sort.Slice(out.Symbols, func(i, j int) bool { return out.Symbols[i].Symbol < out.Symbols[j].Symbol })
	return out
}
