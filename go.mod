module github.com/nlstencil/amop

go 1.23
