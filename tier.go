// Tier-aware dispatch: the analytic fast path and its routing.
//
// The lattice solvers price any contract the models admit, at O(T log^2 T)
// per price. For the bread-and-butter case — a vanilla American option with
// ordinary market parameters — the spectral-collocation pricer in
// internal/analytic answers the same question in tens of microseconds from a
// cached exercise-boundary solve, to an accuracy the lattice needs tens of
// thousands of steps to match. This file is the seam between the two: an
// Algorithm value that forces the analytic pricer, a TierMode that lets the
// batch engine and the live server promote eligible contracts to it
// automatically, per-tier counters surfaced through ReadPerfCounters, and
// the XvalCheck primitive cmd/amop-xval builds its analytic-vs-lattice
// cross-validation on.
//
// The analytic tier only ever serves contracts inside its validity envelope
// (see internal/analytic.Eligible); everything else — Bermudan schedules,
// out-of-envelope parameters, requests that force a lattice algorithm —
// stays on the stencil lattice. Under TierAuto an ineligible contract falls
// back silently (counted in TierFallbacks); a forced Analytic request
// surfaces the envelope error instead, so a caller who insists on the fast
// path learns exactly why it refused.
package amop

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/nlstencil/amop/internal/analytic"
	"github.com/nlstencil/amop/internal/option"
)

// TierMode selects how the batch engine, chain, and live server route
// requests between the analytic fast path and the stencil lattice.
type TierMode int

const (
	// TierLattice routes everything to the stencil lattice solvers. It is
	// the zero value: existing callers keep their exact behavior.
	TierLattice TierMode = iota
	// TierAuto promotes vanilla American contracts inside the analytic
	// validity envelope to the analytic pricer and leaves everything else —
	// European requests, forced lattice algorithms, out-of-envelope
	// parameters — on the lattice. Fallbacks are counted in TierFallbacks.
	TierAuto
	// TierAnalytic forces the analytic tier for every request: eligible
	// contracts are served analytically, ineligible ones fail with the
	// envelope error instead of falling back.
	TierAnalytic
)

// String names the tier as the CLI flags spell it.
func (m TierMode) String() string {
	switch m {
	case TierLattice:
		return "lattice"
	case TierAuto:
		return "auto"
	case TierAnalytic:
		return "analytic"
	}
	return fmt.Sprintf("tier(%d)", int(m))
}

// Per-tier serving counters, surfaced through ReadPerfCounters.
var (
	analyticServes atomic.Int64
	tierFallbacks  atomic.Int64
	xvalChecks     atomic.Int64
)

// TierStats returns the cumulative process-wide tier counters: analytic
// serves, auto-tier fallbacks to the lattice, and cross-validation checks.
func TierStats() (serves, fallbacks, checks int64) {
	return analyticServes.Load(), tierFallbacks.Load(), xvalChecks.Load()
}

// priceAnalytic serves one request from the analytic tier: the closed-form
// Black-Scholes-Merton value for European requests, the spectral-collocation
// American pricer otherwise. Steps is irrelevant here — there is no lattice —
// which is why forced-Analytic configs are exempt from the Steps >= 1 rule.
func priceAnalytic(o Option, cfg Config) (float64, error) {
	p := o.params()
	if cfg.European {
		if err := p.Validate(); err != nil {
			return 0, err
		}
		analyticServes.Add(1)
		return option.BlackScholes(p, option.Kind(o.Type)), nil
	}
	v, err := analytic.Price(p, option.Kind(o.Type))
	if err != nil {
		return 0, fmt.Errorf("amop: %w", err)
	}
	analyticServes.Add(1)
	return v, nil
}

// analyticEligible reports whether TierAuto may promote this request: a
// vanilla American contract, on the default algorithm (a request that forces
// Naive, Tiled, etc. is asking to run that lattice code, not for a number),
// inside the analytic validity envelope.
func analyticEligible(o Option, cfg Config) bool {
	if cfg.European || cfg.Algorithm != Fast {
		return false
	}
	return analytic.Eligible(o.params(), option.Kind(o.Type)) == nil
}

// GreeksAnalytic prices an American option and its full Greeks set from the
// analytic tier's single cached boundary solve — delta and gamma in closed
// form from the premium integrand, theta via the Black-Scholes PDE identity,
// vega and rho as re-solved bumps. It refuses contracts outside the validity
// envelope, exactly as Price with Algorithm Analytic does.
func GreeksAnalytic(o Option) (float64, Greeks, error) {
	v, g, err := analytic.PriceGreeks(o.params(), option.Kind(o.Type))
	if err != nil {
		return 0, Greeks{}, fmt.Errorf("amop: %w", err)
	}
	analyticServes.Add(1)
	return v, Greeks{Delta: g.Delta, Gamma: g.Gamma, Theta: g.Theta, Vega: g.Vega, Rho: g.Rho}, nil
}

// XvalPair is one analytic-vs-lattice cross-validation measurement.
type XvalPair struct {
	// Analytic is the analytic tier's price; Lattice is the fast stencil
	// price at the requested step count.
	Analytic float64
	Lattice  float64
	// RelErr is the symmetric relative disagreement
	// |a-l| / (1 + max(|a|, |l|)) — the metric the repo's cross-validation
	// uses throughout.
	RelErr float64
}

// XvalCheck prices the contract through both tiers — the analytic pricer and
// the fast lattice under the natural model at the given step count — and
// returns the pair. It is the primitive cmd/amop-xval's analytic gate and
// the CI xval job drive; every call counts in ReadPerfCounters.XvalChecks.
// The error is the analytic tier's (envelope refusals included) or the
// lattice's, whichever failed.
func XvalCheck(o Option, steps int) (XvalPair, error) {
	xvalChecks.Add(1)
	a, err := priceAnalytic(o, Config{})
	if err != nil {
		return XvalPair{}, err
	}
	l, err := PriceAmerican(o, steps)
	if err != nil {
		return XvalPair{}, err
	}
	rel := math.Abs(a-l) / (1 + math.Max(math.Abs(a), math.Abs(l)))
	return XvalPair{Analytic: a, Lattice: l, RelErr: rel}, nil
}
